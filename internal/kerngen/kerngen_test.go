package kerngen

import (
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/interp"
	"amdgpubench/internal/isa"
)

var rv770 = device.Lookup(device.RV770)

func pixelParams(inputs int) Params {
	return Params{Mode: il.Pixel, Type: il.Float, Inputs: inputs, Outputs: 1}
}

func TestGenericCounts(t *testing.T) {
	p := pixelParams(8)
	p.ALUOps = 40
	k, err := Generic(p)
	if err != nil {
		t.Fatal(err)
	}
	c := k.Counts()
	if c.Fetch != 8 || c.ALU != 40 || c.Store != 1 {
		t.Fatalf("counts = %+v, want 8 fetch / 40 alu / 1 store", c)
	}
}

func TestGenericPadsALUToFold(t *testing.T) {
	p := pixelParams(16)
	p.ALUOps = 3 // less than the 15 fold ops required
	k, err := Generic(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Counts().ALU; got != 15 {
		t.Fatalf("ALU = %d, want 15 (fold minimum)", got)
	}
}

func TestGenericRejectsTooFewInputs(t *testing.T) {
	if _, err := Generic(pixelParams(1)); err == nil {
		t.Fatal("1-input kernel accepted")
	}
}

func TestGenericRejectsComputeStreamStore(t *testing.T) {
	p := pixelParams(4)
	p.Mode = il.Compute
	p.OutSpace = il.TextureSpace
	p.ALUOps = 8
	if _, err := Generic(p); err == nil {
		t.Fatal("compute-mode streaming store accepted")
	}
}

func TestALUFetchRatioConvention(t *testing.T) {
	// Section III-A: 2 inputs at ratio 2.0 generate 16 ALU operations.
	p := pixelParams(2)
	p.ALUFetchRatio = 2.0
	k, err := ALUFetch(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Counts().ALU; got != 16 {
		t.Fatalf("ALU ops = %d, want 16 (2 inputs x 4 x 2.0)", got)
	}
	// The compiled program must report the same ratio through SKA rules.
	prog, err := ilc.Compile(k, rv770)
	if err != nil {
		t.Fatal(err)
	}
	if r := prog.Stats().ALUFetchSKA; r != 2.0 {
		t.Fatalf("SKA ratio = %v, want 2.0", r)
	}
}

func TestALUFetchNeedsRatio(t *testing.T) {
	if _, err := ALUFetch(pixelParams(4)); err == nil {
		t.Fatal("zero ratio accepted")
	}
}

func TestALUCountIndependentOfDataType(t *testing.T) {
	// The dependency chain defeats packing, so float and float4 kernels
	// compile to the same number of VLIW bundles (Section III).
	for _, dt := range []il.DataType{il.Float, il.Float4} {
		p := pixelParams(16)
		p.Type = dt
		p.ALUFetchRatio = 1.5
		k, err := ALUFetch(p)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ilc.Compile(k, rv770)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := prog.Stats().ALUBundles, 96; got != want {
			t.Fatalf("%s: bundles = %d, want %d", dt, got, want)
		}
	}
}

func TestReadLatencyPinsALU(t *testing.T) {
	for _, inputs := range []int{2, 9, 18} {
		p := pixelParams(inputs)
		k, err := ReadLatency(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := k.Counts().ALU; got != inputs-1 {
			t.Fatalf("inputs=%d: ALU = %d, want %d", inputs, got, inputs-1)
		}
	}
}

func TestWriteLatencyConstantRegisters(t *testing.T) {
	// Section III-C: register usage must depend on the (constant) input
	// size, not the output count.
	var gprs []int
	for outputs := 1; outputs <= 8; outputs++ {
		p := pixelParams(8)
		p.Outputs = outputs
		k, err := WriteLatency(p)
		if err != nil {
			t.Fatal(err)
		}
		if k.Counts().Store != outputs {
			t.Fatalf("outputs=%d: stores = %d", outputs, k.Counts().Store)
		}
		prog, err := ilc.Compile(k, rv770)
		if err != nil {
			t.Fatal(err)
		}
		gprs = append(gprs, prog.GPRCount)
	}
	for i := 1; i < len(gprs); i++ {
		if gprs[i] != gprs[0] {
			t.Fatalf("GPRs vary with outputs: %v", gprs)
		}
	}
}

func TestDomainKernelShape(t *testing.T) {
	p := pixelParams(0)
	k, err := Domain(p)
	if err != nil {
		t.Fatal(err)
	}
	c := k.Counts()
	if c.Fetch != 8 || c.Store != 1 {
		t.Fatalf("domain kernel = %+v, want 8 inputs 1 output", c)
	}
	if c.ALU != 320 { // 8 x 4 x 10.0
		t.Fatalf("ALU = %d, want 320 (ratio 10)", c.ALU)
	}
}

func TestRegisterUsageSweepShrinksGPRs(t *testing.T) {
	// Fig. 16's x axis: with 64 inputs and space 8, increasing step moves
	// sampling later and monotonically shrinks peak register pressure,
	// from ~inputs down to ~initial+space.
	var gprs []int
	for step := 0; step <= 6; step++ {
		p := pixelParams(64)
		p.ALUFetchRatio = 4.0
		p.Space = 8
		p.Step = step
		k, err := RegisterUsage(p)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ilc.Compile(k, rv770)
		if err != nil {
			t.Fatal(err)
		}
		gprs = append(gprs, prog.GPRCount)
	}
	t.Logf("GPR sweep: %v", gprs)
	for i := 1; i < len(gprs); i++ {
		if gprs[i] >= gprs[i-1] {
			t.Fatalf("GPRs not strictly decreasing: %v", gprs)
		}
	}
	if gprs[0] < 64 || gprs[0] > 67 {
		t.Fatalf("step-0 GPRs = %d, want about 64", gprs[0])
	}
	last := gprs[len(gprs)-1]
	if last < 16 || last > 30 {
		t.Fatalf("step-6 GPRs = %d, want roughly initial(16)+space", last)
	}
}

func TestRegisterUsagePreservesWorkload(t *testing.T) {
	// Total fetches and ALU ops stay constant across the step sweep —
	// only placement changes.
	var fetches, alus []int
	for step := 0; step <= 6; step++ {
		p := pixelParams(64)
		p.ALUFetchRatio = 4.0
		p.Space = 8
		p.Step = step
		k, err := RegisterUsage(p)
		if err != nil {
			t.Fatal(err)
		}
		c := k.Counts()
		fetches = append(fetches, c.Fetch)
		alus = append(alus, c.ALU)
	}
	for i := 1; i < len(fetches); i++ {
		if fetches[i] != fetches[0] {
			t.Fatalf("fetch count varies with step: %v", fetches)
		}
		if alus[i] != alus[0] {
			t.Fatalf("ALU count varies with step: %v", alus)
		}
	}
}

func TestClauseUsageConstantGPRs(t *testing.T) {
	// Fig. 5's control: same ALU layout, all sampling up front, so GPR
	// usage stays maximal regardless of step.
	var gprs []int
	for step := 0; step <= 6; step++ {
		p := pixelParams(64)
		p.ALUFetchRatio = 4.0
		p.Space = 8
		p.Step = step
		k, err := ClauseUsage(p)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ilc.Compile(k, rv770)
		if err != nil {
			t.Fatal(err)
		}
		gprs = append(gprs, prog.GPRCount)
	}
	for i := 1; i < len(gprs); i++ {
		if gprs[i] != gprs[0] {
			t.Fatalf("clause-usage GPRs vary: %v", gprs)
		}
	}
	if gprs[0] < 64 {
		t.Fatalf("clause-usage GPRs = %d, want >= 64", gprs[0])
	}
}

func TestRegisterUsageValidation(t *testing.T) {
	p := pixelParams(16)
	p.Space = 8
	p.Step = 2 // leaves 0 initial inputs
	if _, err := RegisterUsage(p); err == nil {
		t.Fatal("empty initial group accepted")
	}
	p.Space = 0
	if _, err := RegisterUsage(p); err == nil {
		t.Fatal("zero space accepted")
	}
}

// TestGeneratedKernelsComputeCorrectSums runs every generator through the
// compiler and both interpreters: outputs must equal the sum of all
// inputs' values at the thread (every generated kernel is, semantically,
// a sum of its inputs plus chain doublings — IL and ISA must agree).
func TestGeneratedKernelsComputeCorrectSums(t *testing.T) {
	env := interp.Env{W: 16, H: 16, Input: func(res, x, y, l int) float32 {
		return float32(res+1) + float32(x)*0.5 + float32(y)*0.25
	}}
	mk := func(name string, gen func() (*il.Kernel, error)) {
		k, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prog, err := ilc.Compile(k, rv770)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		th := interp.Thread{X: 5, Y: 9}
		want, err := interp.RunIL(k, env, th)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := interp.RunISA(prog, env, th)
		if err != nil {
			t.Fatalf("%s: %v\n%s", name, err, isa.Disassemble(prog))
		}
		if !interp.OutputsEqual(want, got, k.Type.Lanes()) {
			t.Fatalf("%s: IL %v != ISA %v", name, want, got)
		}
	}
	mk("generic", func() (*il.Kernel, error) {
		p := pixelParams(8)
		p.ALUOps = 32
		return Generic(p)
	})
	mk("alufetch", func() (*il.Kernel, error) {
		p := pixelParams(16)
		p.ALUFetchRatio = 2.5
		return ALUFetch(p)
	})
	mk("readlat", func() (*il.Kernel, error) { return ReadLatency(pixelParams(12)) })
	mk("writelat", func() (*il.Kernel, error) {
		p := pixelParams(8)
		p.Outputs = 5
		return WriteLatency(p)
	})
	mk("domain", func() (*il.Kernel, error) { return Domain(pixelParams(8)) })
	mk("regusage", func() (*il.Kernel, error) {
		p := pixelParams(64)
		p.ALUFetchRatio = 4
		p.Space = 8
		p.Step = 6
		return RegisterUsage(p)
	})
	mk("clauseusage", func() (*il.Kernel, error) {
		p := pixelParams(64)
		p.ALUFetchRatio = 4
		p.Space = 8
		p.Step = 6
		return ClauseUsage(p)
	})
}

func TestConstantsFoldIntoChain(t *testing.T) {
	p := pixelParams(8)
	p.ALUOps = 32
	p.Constants = 6
	k, err := Generic(p)
	if err != nil {
		t.Fatal(err)
	}
	if k.NumConsts != 6 {
		t.Fatalf("NumConsts = %d, want 6", k.NumConsts)
	}
	// ALU count is unchanged: constants replace chain ops, not add them.
	if got := k.Counts().ALU; got != 32 {
		t.Fatalf("ALU = %d, want 32", got)
	}
	constOps := 0
	for _, in := range k.Code {
		if in.Op.ReadsConst() {
			constOps++
		}
	}
	if constOps != 6 {
		t.Fatalf("const-reading ops = %d, want 6", constOps)
	}
	// GPR count matches the constant-free kernel: constants are free.
	p0 := pixelParams(8)
	p0.ALUOps = 32
	k0, err := Generic(p0)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ilc.Compile(k, rv770)
	if err != nil {
		t.Fatal(err)
	}
	prog0, err := ilc.Compile(k0, rv770)
	if err != nil {
		t.Fatal(err)
	}
	if prog.GPRCount != prog0.GPRCount {
		t.Fatalf("constants changed GPRs: %d vs %d", prog.GPRCount, prog0.GPRCount)
	}
}

func TestConstantsSemantics(t *testing.T) {
	p := pixelParams(2)
	p.ALUOps = 4
	p.Constants = 3
	k, err := Generic(p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ilc.Compile(k, rv770)
	if err != nil {
		t.Fatal(err)
	}
	env := interp.Env{
		W: 4, H: 4,
		Input: func(res, x, y, l int) float32 { return float32(res + x + 1) },
		Const: func(idx, l int) float32 { return float32(idx+1) * 10 },
	}
	th := interp.Thread{X: 2, Y: 1}
	want, err := interp.RunIL(k, env, th)
	if err != nil {
		t.Fatal(err)
	}
	got, err := interp.RunISA(prog, env, th)
	if err != nil {
		t.Fatalf("%v\n%s", err, isa.Disassemble(prog))
	}
	if !interp.OutputsEqual(want, got, 1) {
		t.Fatalf("IL %v != ISA %v\n%s", want, got, isa.Disassemble(prog))
	}
}
