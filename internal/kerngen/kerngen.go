// Package kerngen generates the micro-benchmark kernels of Section III of
// the paper. Every kernel follows the generic pattern of Fig. 3 — sample
// inputs, fold them into a dependency chain of adds, extend the chain to
// the required ALU count, export the tail — with the per-benchmark
// variations the paper specifies:
//
//   - the ALU:Fetch kernel sizes the chain as ratio x 4 x inputs (the SKA
//     convention where 1.0 means four ALU ops per fetch);
//   - the read-latency kernel fixes the chain to inputs-1 ops so fetches
//     stay the bottleneck;
//   - the write-latency kernel holds inputs (8) and the ALU count constant
//     and exports the chain tail to a growing number of outputs, keeping
//     register usage pinned to the input count;
//   - the register-usage kernel (Fig. 6) splits sampling into an initial
//     group plus `step` later groups of `space` fetches placed right
//     before their uses, shrinking peak register pressure;
//   - the clause-usage control kernel (Fig. 5) uses the same ALU structure
//     but samples everything up front, so register pressure stays high —
//     the control proving Fig. 16's gains come from registers, not from
//     moving ALU work between clauses.
//
// The chain's data dependencies defeat VLIW packing, making the ALU
// instruction count independent of the data type, exactly as the paper
// requires for controlling the ALU:Fetch ratio.
package kerngen

import (
	"fmt"

	"amdgpubench/internal/il"
)

// Params configures a generated kernel.
type Params struct {
	Name       string
	Mode       il.ShaderMode
	Type       il.DataType
	Inputs     int
	Outputs    int
	InputSpace il.MemSpace
	OutSpace   il.MemSpace
	// ALUFetchRatio is the SKA-convention ratio; the generated ALU op
	// count is ratio x 4 x inputs (Section III-A).
	ALUFetchRatio float64
	// ALUOps, when positive, overrides the ratio-derived op count.
	ALUOps int
	// Space and Step shape the register-usage kernel (Fig. 6).
	Space, Step int
	// Constants declares a constant buffer of this many elements and
	// folds each into the dependency chain once (via addc/mulc). The
	// paper lists the number of constants among every micro-benchmark's
	// kernel parameters; constants occupy no registers and no fetch
	// bandwidth, which the constants sweep verifies.
	Constants int
}

func (p Params) normalize() (Params, error) {
	if p.Inputs < 2 {
		return p, fmt.Errorf("kerngen: need at least 2 inputs, got %d", p.Inputs)
	}
	if p.Outputs < 1 {
		p.Outputs = 1
	}
	if p.Mode == il.Compute && p.OutSpace == il.TextureSpace {
		return p, fmt.Errorf("kerngen: compute mode cannot use streaming stores")
	}
	if p.Name == "" {
		p.Name = "kernel"
	}
	return p, nil
}

// aluOps resolves the requested ALU op count.
func (p Params) aluOps() int {
	if p.ALUOps > 0 {
		return p.ALUOps
	}
	n := int(p.ALUFetchRatio * 4 * float64(p.Inputs))
	if n < 1 {
		n = 1
	}
	return n
}

// chainState tracks the dependency chain while emitting ALU ops.
type chainState struct {
	k           *il.Kernel
	next        il.Reg
	prev, prev2 il.Reg
	emitted     int
}

func (c *chainState) fold(src il.Reg) {
	c.k.Code = append(c.k.Code, il.Instr{Op: il.OpAdd, Dst: c.next, SrcA: c.prev, SrcB: src, Res: -1})
	c.prev2, c.prev = c.prev, c.next
	c.next++
	c.emitted++
}

func (c *chainState) extend() {
	c.k.Code = append(c.k.Code, il.Instr{Op: il.OpAdd, Dst: c.next, SrcA: c.prev, SrcB: c.prev2, Res: -1})
	c.prev2, c.prev = c.prev, c.next
	c.next++
	c.emitted++
}

// foldConst continues the chain through a constant-buffer element.
func (c *chainState) foldConst(idx int) {
	c.k.Code = append(c.k.Code, il.Instr{Op: il.OpAddC, Dst: c.next, SrcA: c.prev, SrcB: il.NoReg, Res: idx})
	c.prev2, c.prev = c.prev, c.next
	c.next++
	c.emitted++
}

// Generic builds the Fig. 3 kernel: sample all inputs up front, fold, pad
// the chain to the requested ALU count, export. The ALU count includes the
// fold ops, mirroring the paper's generator where the fold decrements the
// remaining op budget.
func Generic(p Params) (*il.Kernel, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	ops := p.aluOps()
	if ops < p.Inputs-1 {
		// The fold alone needs inputs-1 ops; every input must be used.
		ops = p.Inputs - 1
	}
	k := newKernel(p)
	fetch := fetchOp(p)
	for i := 0; i < p.Inputs; i++ {
		k.Code = append(k.Code, il.Instr{Op: fetch, Dst: il.Reg(i), SrcA: il.NoReg, SrcB: il.NoReg, Res: i})
	}
	k.NumConsts = p.Constants
	c := &chainState{k: k, next: il.Reg(p.Inputs), prev: 0, prev2: 0}
	for i := 1; i < p.Inputs; i++ {
		c.fold(il.Reg(i))
	}
	// Fold each declared constant into the chain exactly once, then pad
	// with plain chain ops; the op count stays exactly `ops`.
	for idx := 0; idx < p.Constants && c.emitted < ops; idx++ {
		c.foldConst(idx)
	}
	for c.emitted < ops {
		c.extend()
	}
	emitStores(k, p, c.prev)
	return finish(k)
}

// ALUFetch builds the Section III-A kernel for a given ratio.
func ALUFetch(p Params) (*il.Kernel, error) {
	if p.ALUFetchRatio <= 0 && p.ALUOps <= 0 {
		return nil, fmt.Errorf("kerngen: ALU:Fetch kernel needs a positive ratio")
	}
	if p.Name == "" {
		p.Name = fmt.Sprintf("alufetch_r%.2f", p.ALUFetchRatio)
	}
	return Generic(p)
}

// ReadLatency builds the Section III-B kernel: the ALU count is pinned to
// inputs-1 (the fold only), keeping the fetch path the bottleneck while
// the input count sweeps.
func ReadLatency(p Params) (*il.Kernel, error) {
	p.ALUOps = p.Inputs - 1
	p.ALUFetchRatio = 0
	if p.Name == "" {
		p.Name = fmt.Sprintf("readlat_i%d", p.Inputs)
	}
	return Generic(p)
}

// WriteLatency builds the Section III-C kernel: a constant input count
// (the paper uses eight) and a constant, low ALU count, with the chain
// tail exported to every output. Register usage depends on the inputs, not
// the outputs, because all outputs export the same staged value.
func WriteLatency(p Params) (*il.Kernel, error) {
	if p.Inputs == 0 {
		p.Inputs = 8
	}
	if p.ALUOps <= 0 {
		p.ALUOps = 2 * p.Inputs // low constant: enough to use all inputs
	}
	p.ALUFetchRatio = 0
	if p.Name == "" {
		p.Name = fmt.Sprintf("writelat_o%d", p.Outputs)
	}
	return Generic(p)
}

// Domain builds the Section III-D kernel: eight inputs, one output and an
// ALU:Fetch ratio of 10, so the ALU operations are the bottleneck while
// the domain size sweeps.
func Domain(p Params) (*il.Kernel, error) {
	if p.Inputs == 0 {
		p.Inputs = 8
	}
	p.Outputs = 1
	p.ALUFetchRatio = 10
	p.ALUOps = 0
	if p.Name == "" {
		p.Name = "domain"
	}
	return Generic(p)
}

// RegisterUsage builds the Fig. 6 kernel: sample inputs - space*step
// inputs up front, then before each of `step` ALU blocks sample `space`
// more inputs and fold them in immediately. Peak register pressure tracks
// the up-front group, so sweeping step trades registers for wavefronts.
func RegisterUsage(p Params) (*il.Kernel, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	if p.Space <= 0 || p.Step < 0 {
		return nil, fmt.Errorf("kerngen: register-usage kernel needs space > 0 and step >= 0")
	}
	initial := p.Inputs - p.Space*p.Step
	if initial < 2 {
		return nil, fmt.Errorf("kerngen: space %d x step %d leaves %d initial inputs (need >= 2)", p.Space, p.Step, initial)
	}
	ops := p.aluOps()
	if floor := p.Inputs - 1; ops < floor {
		ops = floor
	}
	blocks := p.Step + 1
	blockALU := ops / blocks

	k := newKernel(p)
	fetch := fetchOp(p)
	res := 0
	sample := func(n int, dst il.Reg) {
		for i := 0; i < n; i++ {
			k.Code = append(k.Code, il.Instr{Op: fetch, Dst: dst + il.Reg(i), SrcA: il.NoReg, SrcB: il.NoReg, Res: res})
			res++
		}
	}

	sample(initial, 0)
	c := &chainState{k: k, next: il.Reg(p.Inputs), prev: 0, prev2: 0}
	for i := 1; i < initial; i++ {
		c.fold(il.Reg(i))
	}
	for c.emitted < blockALU {
		c.extend()
	}
	for s := 0; s < p.Step; s++ {
		base := il.Reg(initial + s*p.Space)
		sample(p.Space, base)
		for i := 0; i < p.Space; i++ {
			c.fold(base + il.Reg(i))
		}
		target := blockALU * (s + 2)
		if s == p.Step-1 {
			target = ops
		}
		for c.emitted < target {
			c.extend()
		}
	}
	emitStores(k, p, c.prev)
	return finish(k)
}

// ClauseUsage builds the Fig. 5 control kernel: identical ALU structure to
// RegisterUsage — the same inputs folded in at the same chain positions —
// but with every input sampled at the beginning, so register pressure
// stays at its maximum for any step value. The paper used it to show the
// register-usage gains do not come from fetch-latency hiding or from
// moving ALU work across clauses.
func ClauseUsage(p Params) (*il.Kernel, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	if p.Space <= 0 || p.Step < 0 {
		return nil, fmt.Errorf("kerngen: clause-usage kernel needs space > 0 and step >= 0")
	}
	initial := p.Inputs - p.Space*p.Step
	if initial < 2 {
		return nil, fmt.Errorf("kerngen: space %d x step %d leaves %d initial inputs (need >= 2)", p.Space, p.Step, initial)
	}
	ops := p.aluOps()
	if floor := p.Inputs - 1; ops < floor {
		ops = floor
	}
	blocks := p.Step + 1
	blockALU := ops / blocks

	k := newKernel(p)
	fetch := fetchOp(p)
	for i := 0; i < p.Inputs; i++ {
		k.Code = append(k.Code, il.Instr{Op: fetch, Dst: il.Reg(i), SrcA: il.NoReg, SrcB: il.NoReg, Res: i})
	}
	c := &chainState{k: k, next: il.Reg(p.Inputs), prev: 0, prev2: 0}
	for i := 1; i < initial; i++ {
		c.fold(il.Reg(i))
	}
	for c.emitted < blockALU {
		c.extend()
	}
	for s := 0; s < p.Step; s++ {
		base := il.Reg(initial + s*p.Space)
		for i := 0; i < p.Space; i++ {
			c.fold(base + il.Reg(i))
		}
		target := blockALU * (s + 2)
		if s == p.Step-1 {
			target = ops
		}
		for c.emitted < target {
			c.extend()
		}
	}
	emitStores(k, p, c.prev)
	return finish(k)
}

func newKernel(p Params) *il.Kernel {
	return &il.Kernel{
		Name: p.Name, Mode: p.Mode, Type: p.Type,
		NumInputs: p.Inputs, NumOutputs: p.Outputs,
		InputSpace: p.InputSpace, OutSpace: p.OutSpace,
	}
}

func fetchOp(p Params) il.Opcode {
	if p.InputSpace == il.GlobalSpace {
		return il.OpGlobalLoad
	}
	return il.OpSample
}

func emitStores(k *il.Kernel, p Params, src il.Reg) {
	op := il.OpExport
	if p.OutSpace == il.GlobalSpace {
		op = il.OpGlobalStore
	}
	for o := 0; o < p.Outputs; o++ {
		k.Code = append(k.Code, il.Instr{Op: op, Dst: il.NoReg, SrcA: src, SrcB: il.NoReg, Res: o})
	}
}

func finish(k *il.Kernel) (*il.Kernel, error) {
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("kerngen: generated invalid kernel: %w", err)
	}
	return k, nil
}
