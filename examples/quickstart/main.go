// Quickstart: open a simulated Radeon HD 4870 (RV770), build the paper's
// generic dependency-chain kernel, compile it to R700-style ISA, execute
// it functionally on a small domain to verify the arithmetic, and time it
// on the full 1024x1024 domain the paper uses — reporting which hardware
// resource (ALU, texture fetch, memory) the kernel is bound by.
package main

import (
	"fmt"
	"log"

	"amdgpubench/internal/cal"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/kerngen"
	"amdgpubench/internal/raster"
)

func main() {
	dev, err := cal.OpenDevice(device.RV770)
	if err != nil {
		log.Fatal(err)
	}
	info := dev.Info()
	fmt.Printf("Opened %s (Radeon HD %s): %d ALUs, %d texture units, %d SIMD engines\n\n",
		info.Arch, info.Arch.CardName(), info.ALUs, info.TextureUnits, info.SIMDEngines)

	ctx := dev.CreateContext()

	// The generic micro-benchmark kernel (paper Fig. 3): sample four
	// inputs, fold them into a dependency chain, export the sum. With the
	// ALU count left at the fold minimum the kernel is exactly a sum of
	// its inputs, which the functional check below verifies.
	kernel, err := kerngen.Generic(kerngen.Params{
		Name: "quickstart", Mode: il.Pixel, Type: il.Float,
		Inputs: 4, Outputs: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Generated IL:")
	fmt.Println(il.Assemble(kernel))

	module, err := ctx.LoadModule(kernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Compiled ISA (paper Fig. 2 layout):")
	fmt.Println(module.Disassemble())
	st := module.Stats()
	fmt.Printf("Static analysis: %d GPRs, %d ALU bundles, %d fetches, SKA ALU:Fetch %.2f\n\n",
		st.GPRs, st.ALUBundles, st.FetchOps, st.ALUFetchSKA)

	// Functional check on a small domain: the kernel sums its inputs.
	const n = 8
	var inputs []*cal.Resource
	for i := 0; i < 4; i++ {
		r, err := ctx.AllocResource2D(n, n, il.Float, il.TextureSpace)
		if err != nil {
			log.Fatal(err)
		}
		i := i
		r.Fill(func(x, y, _ int) float32 { return float32((i + 1) * (y*n + x + 1)) })
		inputs = append(inputs, r)
	}
	out, err := ctx.AllocResource2D(n, n, il.Float, il.TextureSpace)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ctx.Launch(module, cal.LaunchConfig{
		Order: raster.PixelOrder(), W: n, H: n, Iterations: 1,
		Inputs: inputs, Outputs: []*cal.Resource{out}, Functional: true,
	}); err != nil {
		log.Fatal(err)
	}
	got, _ := out.At(3, 2, 0)
	want := float32((1 + 2 + 3 + 4) * (2*n + 3 + 1))
	fmt.Printf("Functional check at (3,2): got %v, want %v\n\n", got, want)
	if got != want {
		log.Fatal("functional execution mismatch")
	}

	// Timed run over the paper's domain, 5000 iterations.
	ev, err := ctx.Launch(module, cal.LaunchConfig{
		Order: raster.PixelOrder(), W: 1024, H: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	res := ev.Result
	fmt.Printf("Timed 1024x1024 x %d iterations: %.3f s\n", 5000, ev.ElapsedSeconds())
	fmt.Printf("  occupancy: %d wavefronts/SIMD (GPR-limited at %d GPRs)\n", res.WavesPerSIMD, res.GPRs)
	fmt.Printf("  texture L1 hit rate: %.3f\n", res.HitRate)
	fmt.Printf("  bottleneck: %s\n", ev.Bottleneck())
}
