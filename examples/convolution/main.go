// Convolution: a 5-tap horizontal Gaussian blur written against the
// suite's stack — the tap images are bound as five shifted input
// resources and the filter weights live in the constant buffer, which
// costs no registers and no fetch traffic (see `amdmb consts`). The
// example verifies the arithmetic functionally, asks the suite for the
// kernel's bottleneck, lets the block-size tuner pick the best compute
// layout, and prints the paper's optimization advice.
package main

import (
	"fmt"
	"log"
	"math"

	"amdgpubench/internal/cal"
	"amdgpubench/internal/core"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/raster"
)

var weights = [5]float32{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}

// convKernel: out = sum_i w[i] * tap[i], taps as inputs, weights as
// constants, accumulation as a dependency chain.
func convKernel(mode il.ShaderMode) (*il.Kernel, error) {
	outSpace := il.TextureSpace
	if mode == il.Compute {
		outSpace = il.GlobalSpace
	}
	k := &il.Kernel{
		Name: "gauss5", Mode: mode, Type: il.Float,
		NumInputs: 5, NumOutputs: 1, NumConsts: 5,
		OutSpace: outSpace,
	}
	r := il.Reg(0)
	for i := 0; i < 5; i++ {
		k.Code = append(k.Code, il.Instr{Op: il.OpSample, Dst: r, SrcA: il.NoReg, SrcB: il.NoReg, Res: i})
		r++
	}
	// acc = tap0*w0; acc += tap_i*w_i (weighted taps via mulc, then add).
	k.Code = append(k.Code, il.Instr{Op: il.OpMulC, Dst: r, SrcA: 0, SrcB: il.NoReg, Res: 0})
	acc := r
	r++
	for i := 1; i < 5; i++ {
		k.Code = append(k.Code, il.Instr{Op: il.OpMulC, Dst: r, SrcA: il.Reg(i), SrcB: il.NoReg, Res: i})
		w := r
		r++
		k.Code = append(k.Code, il.Instr{Op: il.OpAdd, Dst: r, SrcA: acc, SrcB: w, Res: -1})
		acc = r
		r++
	}
	storeOp := il.OpExport
	if outSpace == il.GlobalSpace {
		storeOp = il.OpGlobalStore
	}
	k.Code = append(k.Code, il.Instr{Op: storeOp, Dst: il.NoReg, SrcA: acc, SrcB: il.NoReg, Res: 0})
	return k, k.Validate()
}

func main() {
	dev, err := cal.OpenDevice(device.RV770)
	if err != nil {
		log.Fatal(err)
	}
	ctx := dev.CreateContext()

	// Functional verification on a small image: taps are the source image
	// shifted by -2..2 in x (clamped), weights the binomial Gaussian.
	pix, err := convKernel(il.Pixel)
	if err != nil {
		log.Fatal(err)
	}
	m, err := ctx.LoadModule(pix)
	if err != nil {
		log.Fatal(err)
	}
	const n = 16
	src := func(x, y int) float32 { return float32(x*3 + y*7) }
	clampedSrc := func(x, y int) float32 {
		if x < 0 {
			x = 0
		}
		if x >= n {
			x = n - 1
		}
		return src(x, y)
	}
	var ins []*cal.Resource
	for i := 0; i < 5; i++ {
		r, err := ctx.AllocResource2D(n, n, il.Float, il.TextureSpace)
		if err != nil {
			log.Fatal(err)
		}
		off := i - 2
		r.Fill(func(x, y, _ int) float32 { return clampedSrc(x+off, y) })
		ins = append(ins, r)
	}
	out, err := ctx.AllocResource2D(n, n, il.Float, il.TextureSpace)
	if err != nil {
		log.Fatal(err)
	}
	consts := make([][4]float32, 5)
	for i, w := range weights {
		consts[i] = [4]float32{w, w, w, w}
	}
	if _, err := ctx.Launch(m, cal.LaunchConfig{
		Order: raster.PixelOrder(), W: n, H: n, Iterations: 1,
		Inputs: ins, Outputs: []*cal.Resource{out},
		Constants: consts, Functional: true,
	}); err != nil {
		log.Fatal(err)
	}
	// Verify against a CPU reference at one pixel.
	x, y := 7, 3
	var ref float32
	for i := 0; i < 5; i++ {
		ref += weights[i] * clampedSrc(x+i-2, y)
	}
	got, _ := out.At(x, y, 0)
	fmt.Printf("Gaussian blur at (%d,%d): GPU %.4f vs reference %.4f\n\n", x, y, got, ref)
	if math.Abs(float64(got-ref)) > 1e-3 {
		log.Fatal("functional convolution mismatch")
	}

	// Timing and diagnosis on the full domain.
	s := core.NewSuite()
	card := core.Card{Arch: device.RV770, Mode: il.Pixel, Type: il.Float}
	st := m.Stats()
	fmt.Printf("Static analysis: %d GPRs, %d ALU bundles, %d fetches, SKA ALU:Fetch %.2f\n",
		st.GPRs, st.ALUBundles, st.FetchOps, st.ALUFetchSKA)

	ev, err := ctx.Launch(m, cal.LaunchConfig{Order: raster.PixelOrder(), W: 1024, H: 1024})
	if err != nil {
		log.Fatal(err)
	}
	run := core.Run{
		Card: card, Seconds: ev.ElapsedSeconds(),
		GPRs: ev.Result.GPRs, Waves: ev.Result.WavesPerSIMD,
		HitRate: ev.Result.HitRate, Bottleneck: ev.Bottleneck().String(),
	}
	fmt.Printf("Pixel mode, 1024x1024 x 5000: %.3f s\n\n", ev.ElapsedSeconds())
	fmt.Print(core.AdviseString(run))
	fmt.Println()

	// Compute mode: let the tuner pick the block shape.
	cmp, err := convKernel(il.Compute)
	if err != nil {
		log.Fatal(err)
	}
	ccard := core.Card{Arch: device.RV770, Mode: il.Compute, Type: il.Float}
	tune, err := s.TuneBlockSize(ccard, cmp, 1024, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Compute-mode block-size tuning:")
	fmt.Print(core.FormatBlockTune(tune))
}
