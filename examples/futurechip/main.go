// Futurechip: the paper closes by claiming the suite "can be applied to
// both past and future AMD GPU generations" and names adapting to next
// generation hardware changes as future work. This example exercises that
// portability: it defines a hypothetical successor chip — twice the RV870's
// SIMD engines, a larger texture L1, faster GDDR5 — opens it through the
// same CAL API, and reruns two of the suite's experiments to see which
// bottlenecks the imagined hardware would move.
package main

import (
	"fmt"
	"log"

	"amdgpubench/internal/cal"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/kerngen"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/report"
)

// futureSpec sketches an "RV970": Cypress doubled, with the cache
// regression of the RV870 undone (back to 16KB, keeping the long lines).
func futureSpec() device.Spec {
	s := device.Lookup(device.RV870)
	s.Arch = device.Arch(3) // not one of the three known generations
	s.SIMDEngines = 40
	s.ALUs = 3200
	s.TextureUnits = 160
	s.CoreClockMHz = 900
	s.MemClockMHz = 1500
	s.MemChannels = 16
	s.L1CacheBytes = 16 * 1024
	s.L1Ways = 8
	return s
}

func main() {
	spec := futureSpec()
	if err := spec.Validate(); err != nil {
		log.Fatalf("future chip spec invalid: %v", err)
	}
	devNew, err := cal.OpenCustomDevice(spec)
	if err != nil {
		log.Fatal(err)
	}
	devOld, err := cal.OpenDevice(device.RV870)
	if err != nil {
		log.Fatal(err)
	}
	ctxNew := devNew.CreateContext()
	ctxOld := devOld.CreateContext()

	fmt.Printf("Hypothetical successor: %d SIMD engines, %d ALUs, %d texture units, %d MHz core\n\n",
		spec.SIMDEngines, spec.ALUs, spec.TextureUnits, spec.CoreClockMHz)

	// Experiment 1: where does the ALU:Fetch crossover move?
	t := &report.Table{
		Title:  "ALU:Fetch sweep (16 inputs, float4, pixel, 1024x1024): 5870 vs successor",
		Header: []string{"ratio", "5870 s", "successor s", "5870 bound", "successor bound"},
	}
	for _, ratio := range []float64{0.25, 1, 2, 4, 6, 8} {
		k, err := kerngen.ALUFetch(kerngen.Params{
			Mode: il.Pixel, Type: il.Float4, Inputs: 16, Outputs: 1, ALUFetchRatio: ratio,
		})
		if err != nil {
			log.Fatal(err)
		}
		mOld, err := ctxOld.LoadModule(k)
		if err != nil {
			log.Fatal(err)
		}
		mNew, err := ctxNew.LoadModule(k)
		if err != nil {
			log.Fatal(err)
		}
		evOld, err := ctxOld.Launch(mOld, cal.LaunchConfig{Order: raster.PixelOrder(), W: 1024, H: 1024})
		if err != nil {
			log.Fatal(err)
		}
		evNew, err := ctxNew.Launch(mNew, cal.LaunchConfig{Order: raster.PixelOrder(), W: 1024, H: 1024})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%.3f", evOld.ElapsedSeconds()), fmt.Sprintf("%.3f", evNew.ElapsedSeconds()),
			evOld.Bottleneck().String(), evNew.Bottleneck().String())
	}
	fmt.Println(t.Format())

	// Experiment 2: does the register-pressure sweet spot move?
	t2 := &report.Table{
		Title:  "Register pressure (64 inputs, space 8, float): 5870 vs successor",
		Header: []string{"step", "GPRs", "5870 s", "successor s"},
	}
	for step := 0; step <= 6; step += 2 {
		k, err := kerngen.RegisterUsage(kerngen.Params{
			Mode: il.Pixel, Type: il.Float, Inputs: 64, Outputs: 1,
			ALUFetchRatio: 1.0, Space: 8, Step: step,
		})
		if err != nil {
			log.Fatal(err)
		}
		mOld, err := ctxOld.LoadModule(k)
		if err != nil {
			log.Fatal(err)
		}
		mNew, err := ctxNew.LoadModule(k)
		if err != nil {
			log.Fatal(err)
		}
		evOld, err := ctxOld.Launch(mOld, cal.LaunchConfig{Order: raster.PixelOrder(), W: 1024, H: 1024})
		if err != nil {
			log.Fatal(err)
		}
		evNew, err := ctxNew.Launch(mNew, cal.LaunchConfig{Order: raster.PixelOrder(), W: 1024, H: 1024})
		if err != nil {
			log.Fatal(err)
		}
		t2.AddRow(fmt.Sprintf("%d", step), fmt.Sprintf("%d", mOld.Prog.GPRCount),
			fmt.Sprintf("%.3f", evOld.ElapsedSeconds()), fmt.Sprintf("%.3f", evNew.ElapsedSeconds()))
	}
	fmt.Println(t2.Format())

	fmt.Println("The suite ports unchanged: only the device table differs, as the paper intends.")
}
