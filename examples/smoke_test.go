// Package examples holds runnable demonstration programs; this test
// keeps them honest. Each example is built and executed end-to-end, so
// API drift in the packages they showcase breaks `go test ./...`
// instead of rotting silently until a reader tries one.
package examples

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

var exampleDirs = []string{
	"binomial", "convolution", "futurechip", "matmul", "montecarlo", "quickstart",
}

func TestExampleDirsComplete(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, d := range exampleDirs {
		want[d] = true
	}
	for _, e := range entries {
		if e.IsDir() && !want[e.Name()] {
			t.Errorf("example %s is not covered by the smoke test", e.Name())
		}
	}
}

func TestExamplesBuildAndRun(t *testing.T) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH; cannot build examples")
	}
	binDir := t.TempDir()
	for _, dir := range exampleDirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			if _, err := os.Stat(filepath.Join(dir, "main.go")); err != nil {
				t.Fatalf("example missing: %v", err)
			}
			bin := filepath.Join(binDir, dir)
			build := exec.Command(goTool, "build", "-o", bin, "./"+dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build: %v\n%s", err, out)
			}
			// Every example is a deterministic model run that finishes in
			// well under a second; a minute means a hang, not a slow box.
			var stdout, stderr bytes.Buffer
			cmd := exec.Command(bin)
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			done := make(chan error, 1)
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("example failed: %v\nstderr: %s", err, stderr.String())
				}
			case <-time.After(60 * time.Second):
				cmd.Process.Kill()
				t.Fatal("example did not finish within 60s")
			}
			if stdout.Len() == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
