// Montecarlo: the paper notes (Section IV-C) that the StreamSDK's Monte
// Carlo sample contains kernels that are global-write bound, and that such
// kernels have headroom for additional ALU (or fetch) instructions at no
// cost until the bound flips from write to ALU.
//
// This example builds a Monte-Carlo-shaped kernel — a small seed input, a
// multiply-add recurrence standing in for the path simulation, and several
// float4 global-memory outputs (the simulated paths) — confirms the suite
// classifies it as memory (write) bound, then adds ALU work until the
// bottleneck flips, locating the free-compute headroom the paper promises.
package main

import (
	"fmt"
	"log"

	"amdgpubench/internal/cal"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/report"
)

// monteCarloKernel: 2 seed inputs, `steps` recurrence steps, `paths`
// global float4 outputs each receiving a distinct point of the chain.
func monteCarloKernel(steps, paths int) (*il.Kernel, error) {
	k := &il.Kernel{
		Name: fmt.Sprintf("mc_s%d_p%d", steps, paths),
		Mode: il.Compute, Type: il.Float4,
		NumInputs: 2, NumOutputs: paths,
		InputSpace: il.TextureSpace, OutSpace: il.GlobalSpace,
	}
	r := il.Reg(0)
	k.Code = append(k.Code,
		il.Instr{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
		il.Instr{Op: il.OpSample, Dst: 1, SrcA: il.NoReg, SrcB: il.NoReg, Res: 1},
	)
	r = 2
	acc, mul := il.Reg(0), il.Reg(1)
	tails := make([]il.Reg, 0, paths)
	for s := 0; s < steps; s++ {
		k.Code = append(k.Code, il.Instr{Op: il.OpMul, Dst: r, SrcA: acc, SrcB: mul, Res: -1})
		prod := r
		r++
		k.Code = append(k.Code, il.Instr{Op: il.OpAdd, Dst: r, SrcA: prod, SrcB: acc, Res: -1})
		acc = r
		r++
		if len(tails) < paths {
			tails = append(tails, acc)
		}
	}
	for len(tails) < paths {
		tails = append(tails, acc)
	}
	for p := 0; p < paths; p++ {
		k.Code = append(k.Code, il.Instr{Op: il.OpGlobalStore, Dst: il.NoReg, SrcA: tails[p], SrcB: il.NoReg, Res: p})
	}
	return k, k.Validate()
}

func main() {
	dev, err := cal.OpenDevice(device.RV770)
	if err != nil {
		log.Fatal(err)
	}
	ctx := dev.CreateContext()

	t := &report.Table{
		Title:  "Monte Carlo path-writing microkernel on the simulated HD 4870 (float4, global writes)",
		Header: []string{"recurrence steps", "paths (outputs)", "seconds", "bottleneck"},
	}
	run := func(steps, paths int) *cal.Event {
		k, err := monteCarloKernel(steps, paths)
		if err != nil {
			log.Fatal(err)
		}
		m, err := ctx.LoadModule(k)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := ctx.Launch(m, cal.LaunchConfig{Order: raster.Naive64x1(), W: 1024, H: 1024})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(fmt.Sprintf("%d", steps), fmt.Sprintf("%d", paths),
			fmt.Sprintf("%.3f", ev.ElapsedSeconds()), ev.Bottleneck().String())
		return ev
	}

	// The path writer: a short recurrence, eight written paths.
	base := run(8, 8)
	if base.Bottleneck().String() != "memory" {
		log.Fatalf("expected the Monte Carlo kernel to be write bound, got %s", base.Bottleneck())
	}

	// The paper's headroom claim: add ALU work until the bound flips.
	flipped := -1
	var lastSeconds float64 = base.ElapsedSeconds()
	for _, steps := range []int{64, 128, 256, 512, 1024} {
		ev := run(steps, 8)
		if flipped < 0 && ev.Bottleneck().String() == "ALU" {
			flipped = steps
		}
		lastSeconds = ev.ElapsedSeconds()
	}

	fmt.Print(t.Format())
	fmt.Println()
	fmt.Printf("Write bound at 8 recurrence steps (%.3f s).\n", base.ElapsedSeconds())
	if flipped > 0 {
		fmt.Printf("The bottleneck flips to ALU at about %d steps — everything below that\n", flipped)
		fmt.Printf("is free compute headroom, as the paper's Section IV-C argues.\n")
	} else {
		fmt.Printf("Still write bound at 1024 steps (%.3f s).\n", lastSeconds)
	}
}
