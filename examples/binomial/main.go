// Binomial: the paper notes (Section IV-A) that the StreamSDK's Binomial
// Option Pricing sample has several ALU-bound kernels, and argues that an
// ALU-bound kernel has free capacity on the fetch and memory paths: low
// arithmetic-intensity work can be merged in without increasing execution
// time, improving whole-GPU utilization.
//
// This example builds a binomial-lattice-shaped kernel (a deep dependent
// chain of multiply-add steps over a handful of market inputs), confirms
// the suite classifies it as ALU bound, then demonstrates the paper's
// "kernel merging" observation: doubling the number of fetched inputs
// barely moves the execution time — until the added fetch traffic finally
// flips the bottleneck.
package main

import (
	"fmt"
	"log"

	"amdgpubench/internal/cal"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/report"
)

// binomialKernel: `inputs` market-parameter textures (spot, strike, rate,
// volatility, ...) feed `steps` dependent lattice steps, each a mul and an
// add on the running value — the backward-induction recurrence's shape.
func binomialKernel(inputs, steps int) (*il.Kernel, error) {
	k := &il.Kernel{
		Name: fmt.Sprintf("binomial_i%d_s%d", inputs, steps),
		Mode: il.Pixel, Type: il.Float,
		NumInputs: inputs, NumOutputs: 1,
	}
	r := il.Reg(0)
	for i := 0; i < inputs; i++ {
		k.Code = append(k.Code, il.Instr{Op: il.OpSample, Dst: r, SrcA: il.NoReg, SrcB: il.NoReg, Res: i})
		r++
	}
	// Fold the market inputs into an initial lattice value.
	acc := il.Reg(0)
	for i := 1; i < inputs; i++ {
		k.Code = append(k.Code, il.Instr{Op: il.OpAdd, Dst: r, SrcA: acc, SrcB: il.Reg(i), Res: -1})
		acc = r
		r++
	}
	up := il.Reg(0) // stands in for the up-factor operand
	for s := 0; s < steps; s++ {
		k.Code = append(k.Code, il.Instr{Op: il.OpMul, Dst: r, SrcA: acc, SrcB: up, Res: -1})
		prod := r
		r++
		k.Code = append(k.Code, il.Instr{Op: il.OpAdd, Dst: r, SrcA: prod, SrcB: acc, Res: -1})
		acc = r
		r++
	}
	k.Code = append(k.Code, il.Instr{Op: il.OpExport, Dst: il.NoReg, SrcA: acc, SrcB: il.NoReg, Res: 0})
	return k, k.Validate()
}

func main() {
	dev, err := cal.OpenDevice(device.RV770)
	if err != nil {
		log.Fatal(err)
	}
	ctx := dev.CreateContext()

	t := &report.Table{
		Title:  "Binomial option pricing microkernel on the simulated HD 4870",
		Header: []string{"inputs", "lattice steps", "seconds", "bottleneck", "GPRs", "waves/SIMD"},
	}

	run := func(inputs, steps int) *cal.Event {
		k, err := binomialKernel(inputs, steps)
		if err != nil {
			log.Fatal(err)
		}
		m, err := ctx.LoadModule(k)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := ctx.Launch(m, cal.LaunchConfig{Order: raster.PixelOrder(), W: 1024, H: 1024})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(fmt.Sprintf("%d", inputs), fmt.Sprintf("%d", steps),
			fmt.Sprintf("%.3f", ev.ElapsedSeconds()), ev.Bottleneck().String(),
			fmt.Sprintf("%d", ev.Result.GPRs), fmt.Sprintf("%d", ev.Result.WavesPerSIMD))
		return ev
	}

	// The pricing kernel proper: 4 market inputs, a 256-step lattice.
	base := run(4, 256)
	if base.Bottleneck().String() != "ALU" {
		log.Fatalf("expected the binomial kernel to be ALU bound, got %s", base.Bottleneck())
	}

	// The paper's merging argument: fetch-light work rides along free.
	with8 := run(8, 256)
	with16 := run(16, 256)
	with64 := run(64, 256)

	fmt.Print(t.Format())
	fmt.Println()
	over8 := (with8.ElapsedSeconds() - base.ElapsedSeconds()) / base.ElapsedSeconds() * 100
	over16 := (with16.ElapsedSeconds() - base.ElapsedSeconds()) / base.ElapsedSeconds() * 100
	over64 := (with64.ElapsedSeconds() - base.ElapsedSeconds()) / base.ElapsedSeconds() * 100
	fmt.Printf("ALU bound at 4 inputs: merging in 4 more fetches costs %.1f%%, 12 more %.1f%% —\n", over8, over16)
	fmt.Printf("the fetch units were idle, as the paper's Section IV-A argues.\n")
	fmt.Printf("At 64 inputs the cost jumps %.1f%%: the input registers cut occupancy from %d\n",
		over64, base.Result.WavesPerSIMD)
	fmt.Printf("to %d wavefronts/SIMD, and latency hiding collapses — the register-pressure\n",
		with64.Result.WavesPerSIMD)
	fmt.Printf("effect the suite's Fig. 16 benchmark measures directly.\n")
}
