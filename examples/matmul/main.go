// Matmul: the paper observes (Section IV-B) that the StreamSDK's matrix
// multiplication samples are fetch bound — too few ALU operations per
// fetch to hide fetch latency — and prescribes the optimizations the
// micro-benchmark suite points at: raise the ALU:Fetch ratio by computing
// more per fetch, reduce register pressure to run more wavefronts, and in
// compute mode pick a two-dimensional block size to lift the cache hit
// rate.
//
// This example builds a matmul-shaped inner-loop kernel (a tile of dot
// products: paired fetches from A and B feeding multiply-accumulate
// chains), confirms the suite classifies it as fetch bound, then applies
// each prescription and measures the effect.
package main

import (
	"fmt"
	"log"

	"amdgpubench/internal/cal"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/report"
)

// matmulKernel builds the inner-product microkernel: k tiles from A and k
// tiles from B are fetched and folded into acc += a*b chains. unroll > 1
// mimics computing several output elements per thread (more ALU work per
// fetched tile, the classic matmul optimization).
func matmulKernel(mode il.ShaderMode, k, unroll int) (*il.Kernel, error) {
	outSpace := il.TextureSpace
	if mode == il.Compute {
		outSpace = il.GlobalSpace
	}
	kn := &il.Kernel{
		Name: fmt.Sprintf("matmul_k%d_u%d", k, unroll),
		Mode: mode, Type: il.Float4,
		NumInputs: 2 * k, NumOutputs: 1,
		InputSpace: il.TextureSpace, OutSpace: outSpace,
	}
	r := il.Reg(0)
	for i := 0; i < 2*k; i++ {
		kn.Code = append(kn.Code, il.Instr{Op: il.OpSample, Dst: r, SrcA: il.NoReg, SrcB: il.NoReg, Res: i})
		r++
	}
	// acc = a0*b0; acc += ai*bi ... repeated per unrolled output element.
	prods := make([]il.Reg, 0, k)
	for i := 0; i < k; i++ {
		kn.Code = append(kn.Code, il.Instr{Op: il.OpMul, Dst: r, SrcA: il.Reg(i), SrcB: il.Reg(k + i), Res: -1})
		prods = append(prods, r)
		r++
	}
	acc := prods[0]
	for i := 1; i < k; i++ {
		kn.Code = append(kn.Code, il.Instr{Op: il.OpAdd, Dst: r, SrcA: acc, SrcB: prods[i], Res: -1})
		acc = r
		r++
	}
	// Unrolled outputs reuse the fetched tiles for more ALU work.
	for u := 1; u < unroll; u++ {
		prev := acc
		for i := 0; i < k; i++ {
			kn.Code = append(kn.Code, il.Instr{Op: il.OpMul, Dst: r, SrcA: prev, SrcB: il.Reg((u + i) % (2 * k)), Res: -1})
			prev = r
			r++
			kn.Code = append(kn.Code, il.Instr{Op: il.OpAdd, Dst: r, SrcA: prev, SrcB: acc, Res: -1})
			prev = r
			r++
		}
		acc = prev
	}
	kn.Code = append(kn.Code, il.Instr{Op: storeOp(outSpace), Dst: il.NoReg, SrcA: acc, SrcB: il.NoReg, Res: 0})
	return kn, kn.Validate()
}

func storeOp(space il.MemSpace) il.Opcode {
	if space == il.GlobalSpace {
		return il.OpGlobalStore
	}
	return il.OpExport
}

func run(ctx *cal.Context, kn *il.Kernel, order raster.Order) (*cal.Event, error) {
	m, err := ctx.LoadModule(kn)
	if err != nil {
		return nil, err
	}
	return ctx.Launch(m, cal.LaunchConfig{Order: order, W: 1024, H: 1024})
}

func main() {
	dev, err := cal.OpenDevice(device.RV770)
	if err != nil {
		log.Fatal(err)
	}
	ctx := dev.CreateContext()

	t := &report.Table{
		Title:  "Matrix-multiply microkernel on the simulated HD 4870 (1024x1024, 5000 iterations)",
		Header: []string{"variant", "seconds", "bottleneck", "GPRs", "waves/SIMD", "L1 hit"},
	}
	add := func(name string, ev *cal.Event) {
		r := ev.Result
		t.AddRow(name, fmt.Sprintf("%.3f", ev.ElapsedSeconds()), ev.Bottleneck().String(),
			fmt.Sprintf("%d", r.GPRs), fmt.Sprintf("%d", r.WavesPerSIMD), fmt.Sprintf("%.3f", r.HitRate))
	}

	// Baseline: 8-deep dot product, one output element per thread,
	// pixel shader mode — the StreamSDK sample's shape.
	base, err := matmulKernel(il.Pixel, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := run(ctx, base, raster.PixelOrder())
	if err != nil {
		log.Fatal(err)
	}
	add("baseline (pixel)", ev)
	baseline := ev.ElapsedSeconds()
	if ev.Bottleneck().String() != "fetch" {
		log.Fatalf("expected the matmul microkernel to be fetch bound, got %s", ev.Bottleneck())
	}

	// Prescription 1: more ALU work per fetch (unroll outputs).
	for _, u := range []int{2, 4} {
		kn, err := matmulKernel(il.Pixel, 8, u)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := run(ctx, kn, raster.PixelOrder())
		if err != nil {
			log.Fatal(err)
		}
		add(fmt.Sprintf("unroll x%d (pixel)", u), ev)
	}

	// Prescription 2 (compute mode): the naive 64x1 block versus a 4x16
	// block — the cache-hit-rate optimization of Figs. 7/8.
	ck, err := matmulKernel(il.Compute, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	ev64, err := run(ctx, ck, raster.Naive64x1())
	if err != nil {
		log.Fatal(err)
	}
	add("compute, 64x1 block", ev64)
	ev416, err := run(ctx, ck, raster.Block4x16())
	if err != nil {
		log.Fatal(err)
	}
	add("compute, 4x16 block", ev416)

	fmt.Print(t.Format())
	fmt.Println()
	fmt.Printf("The suite's diagnosis: the baseline is fetch bound at %.3f s.\n", baseline)
	fmt.Printf("Unrolling adds ALU work at no time cost — the fetch-bound kernel had idle\n")
	fmt.Printf("ALU headroom, so computing more per fetched tile is free (Section IV-B).\n")
	fmt.Printf("In compute mode the 4x16 block replaces the 64x1 walk's scattered DRAM\n")
	fmt.Printf("row activations with contiguous tile fills, cutting time from %.3f s to %.3f s.\n",
		ev64.ElapsedSeconds(), ev416.ElapsedSeconds())
}
