#!/usr/bin/env bash
# bench.sh — run the suite's headline hot-path benchmarks and record the
# results as BENCH_<sha>.json (one entry per benchmark: iterations, ns/op,
# and every custom metric the benchmark reports, e.g. crossover ratios or
# the repeated-sweep pair's cache-hit-rate).
#
# The JSON file is the comparable artifact for before/after performance
# work: run it on two commits and diff the ns_per_op fields. CI uploads it
# as a build artifact on every push.
#
# Environment overrides:
#   BENCH      regexp alternation of benchmark names (sans Benchmark prefix)
#   BENCHTIME  go test -benchtime value (default 2x)
#   COUNT      go test -count value (default 1)
#   OUTDIR     directory for the JSON file (default repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-Fig2Disassembly|Fig7ALUFetch|Fig7RepeatedSweepCached|Fig7RepeatedSweepUncached|SequentialBundle|CampaignBundle}"
BENCHTIME="${BENCHTIME:-2x}"
COUNT="${COUNT:-1}"
OUTDIR="${OUTDIR:-.}"

mkdir -p "$OUTDIR"
sha=$(git rev-parse --short=12 HEAD 2>/dev/null || echo nogit)
out="$OUTDIR/BENCH_${sha}.json"

raw=$(go test -run '^$' -bench "^Benchmark(${BENCH})\$" -benchtime "$BENCHTIME" -count "$COUNT" .)
printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk \
	-v sha="$sha" \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v gover="$(go env GOVERSION)" '
BEGIN {
	printf "{\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [", sha, date, gover
	n = 0
}
/^Benchmark/ {
	name = $1
	sub(/^Benchmark/, "", name)
	sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
	iters = $2
	nsop = ""
	metrics = ""
	# Fields from $3 on are value/unit pairs: "123 ns/op 0.75 crossover".
	for (i = 3; i + 1 <= NF; i += 2) {
		val = $i
		unit = $(i + 1)
		if (unit == "ns/op") {
			nsop = val
		} else {
			if (metrics != "") metrics = metrics ", "
			metrics = metrics sprintf("\"%s\": %s", unit, val)
		}
	}
	if (nsop == "") next
	if (n++) printf ","
	printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"metrics\": {%s}}", name, iters, nsop, metrics
}
END { printf "\n  ]\n}\n" }
' >"$out"

echo "wrote $out" >&2
