#!/usr/bin/env bash
# bench.sh — run the suite's headline hot-path benchmarks and record the
# results as BENCH_<sha>.json (one entry per benchmark: iterations, ns/op,
# and every custom metric the benchmark reports, e.g. crossover ratios or
# the repeated-sweep pair's cache-hit-rate).
#
# The JSON file is the comparable artifact for before/after performance
# work: run it on two commits and diff the ns_per_op fields. CI uploads it
# as a build artifact on every push.
#
# After writing the file, the script compares it against the most
# recently committed BENCH_*.json and prints the per-benchmark ns/op
# deltas (benchmarks present in only one file are skipped). With GATE=1
# a regression above 25% on any compared benchmark fails the script —
# the threshold CI's bench-smoke enforces; it is deliberately loose so
# runner noise does not flap the gate.
#
# Environment overrides:
#   BENCH      regexp alternation of benchmark names (sans Benchmark prefix)
#   BENCHTIME  go test -benchtime value (default 2x)
#   COUNT      go test -count value (default 1)
#   OUTDIR     directory for the JSON file (default repo root)
#   GATE       1 = exit nonzero on a >25% ns/op regression vs the baseline
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-Fig2Disassembly|Fig7ALUFetch|Fig7RepeatedSweepCached|Fig7RepeatedSweepUncached|IncrementalSweepCold|IncrementalSweepReuse|SequentialBundle|CampaignBundle|HierInfer|HierLadderSweep}"
BENCHTIME="${BENCHTIME:-2x}"
COUNT="${COUNT:-1}"
OUTDIR="${OUTDIR:-.}"

mkdir -p "$OUTDIR"
sha=$(git rev-parse --short=12 HEAD 2>/dev/null || echo nogit)
out="$OUTDIR/BENCH_${sha}.json"

raw=$(go test -run '^$' -bench "^Benchmark(${BENCH})\$" -benchtime "$BENCHTIME" -count "$COUNT" .)
printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk \
	-v sha="$sha" \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v gover="$(go env GOVERSION)" '
BEGIN {
	printf "{\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [", sha, date, gover
	n = 0
}
/^Benchmark/ {
	name = $1
	sub(/^Benchmark/, "", name)
	sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
	iters = $2
	nsop = ""
	metrics = ""
	# Fields from $3 on are value/unit pairs: "123 ns/op 0.75 crossover".
	for (i = 3; i + 1 <= NF; i += 2) {
		val = $i
		unit = $(i + 1)
		if (unit == "ns/op") {
			nsop = val
		} else {
			if (metrics != "") metrics = metrics ", "
			metrics = metrics sprintf("\"%s\": %s", unit, val)
		}
	}
	if (nsop == "") next
	if (n++) printf ","
	printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"metrics\": {%s}}", name, iters, nsop, metrics
}
END { printf "\n  ]\n}\n" }
' >"$out"

echo "wrote $out" >&2

# ---- baseline comparison ----
# The baseline is the most recently committed BENCH_*.json (by commit
# time), i.e. the artifact the previous performance-relevant change
# recorded. Only benchmarks present in both files are compared.
baseline=""
newest=0
while read -r f; do
	[ "$f" = "$(basename "$out")" ] && continue
	ct=$(git log -1 --format=%ct -- "$f" 2>/dev/null || echo 0)
	[ -z "$ct" ] && ct=0
	if [ "$ct" -gt "$newest" ]; then
		newest=$ct
		baseline=$f
	fi
done < <(git ls-files 'BENCH_*.json' 2>/dev/null || true)

if [ -z "$baseline" ]; then
	echo "no committed BENCH_*.json baseline; skipping comparison" >&2
elif ! command -v jq >/dev/null 2>&1; then
	echo "jq not found; skipping baseline comparison" >&2
else
	echo "deltas vs $baseline:" >&2
	fail=0
	while IFS=$'\t' read -r name base cur; do
		delta=$(awk -v b="$base" -v c="$cur" 'BEGIN { printf "%+.1f", 100 * (c - b) / b }')
		printf '  %-32s %14.0f -> %14.0f ns/op  (%s%%)\n' "$name" "$base" "$cur" "$delta" >&2
		if awk -v b="$base" -v c="$cur" 'BEGIN { exit !(c > 1.25 * b) }'; then
			echo "  ^ REGRESSION: $name is more than 25% slower than the baseline" >&2
			fail=1
		fi
	done < <(jq -r --slurpfile base "$baseline" '
		.benchmarks[] as $cur
		| ($base[0].benchmarks[] | select(.name == $cur.name)) as $b
		| [$cur.name, $b.ns_per_op, $cur.ns_per_op] | @tsv' "$out")
	if [ "$fail" = 1 ] && [ "${GATE:-0}" = 1 ]; then
		echo "bench gate: >25% regression against $baseline" >&2
		exit 1
	fi
fi
