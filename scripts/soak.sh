#!/usr/bin/env bash
# soak.sh — run an adversarial soak campaign against the suite: seeded
# random kernels through the real pipeline under fault injection,
# kill/checkpoint/resume cycles and artifact-cache churn, with the
# invariant oracles (determinism, replay conservation, metrics/trace
# accounting, checkpoint identity) checked after every step, followed by
# the out-of-process SIGKILL crash-torture pass.
#
# CI runs the short version of this (soak-smoke); this script is for
# longer local campaigns. Oracle violations exit 4 and leave replayable
# repro bundles under $BUNDLES — attach them to the bug report.
#
# Environment overrides:
#   SEED      campaign seed (default: current unix time, printed)
#   DURATION  campaign length (default 60s)
#   FAULTS    fault plan (default transient+hang+throttle mix)
#   KILL      kill/resume cadence in steps (default 3)
#   CHURN     cache-churn goroutines (default 2)
#   TORTURE   SIGKILL torture cycles (default 3; 0 skips)
#   BUNDLES   repro bundle directory (default soak-bundles)
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${SEED:-$(date +%s)}"
DURATION="${DURATION:-60s}"
FAULTS="${FAULTS:-seed=9;transient:prob=0.2;hang:prob=0.05;throttle:prob=0.1,factor=0.5}"
KILL="${KILL:-3}"
CHURN="${CHURN:-2}"
TORTURE="${TORTURE:-3}"
BUNDLES="${BUNDLES:-soak-bundles}"

go build -o /tmp/amdmb-soak ./cmd/amdmb

echo "soak: seed=$SEED duration=$DURATION faults='$FAULTS'" >&2
/tmp/amdmb-soak soak -seed "$SEED" -duration "$DURATION" \
  -faults "$FAULTS" -kill-every "$KILL" -churn "$CHURN" \
  -bundles "$BUNDLES"

if [ "$TORTURE" -gt 0 ]; then
  /tmp/amdmb-soak soak -torture "$TORTURE"
fi
