// Package amdgpubench is a from-scratch Go reproduction of "A
// Micro-benchmark Suite for AMD GPUs" (Ryan Taylor and Xiaoming Li, ICPP
// Workshops 2010). The original suite measured hidden architectural
// parameters of the RV670/RV770/RV870 GPUs through AMD's StreamSDK; since
// both the hardware and the SDK are long obsolete, this repository rebuilds
// the whole stack as a simulator and runs the paper's experiments on it:
//
//   - internal/il       AMD IL kernel language (the suite's kernels are generated IL)
//   - internal/ilc      IL -> R700-style ISA compiler (clauses, VLIW packing, registers)
//   - internal/isa      ISA clause/bundle representation and disassembler
//   - internal/interp   reference interpreters proving compiler correctness
//   - internal/device   RV670 / RV770 / RV870 parameter tables (paper Table I)
//   - internal/raster   pixel-mode tiled walk and compute-mode block walks
//   - internal/cache    trace-driven texture L1 model with DRAM row accounting
//   - internal/mem      resource pipes and the DRAM cost model
//   - internal/sim      event-driven wavefront/clause timing simulator
//   - internal/cal      CAL-like runtime API (devices, contexts, modules, resources)
//   - internal/kerngen  the paper's kernel generators (Figs. 3, 5, 6)
//   - internal/core     the micro-benchmark suite: one benchmark per paper experiment
//   - internal/report   figures, tables, ASCII plots and CSV output
//
// The cmd/amdmb tool regenerates every table and figure of the paper;
// bench_test.go exposes each experiment as a Go benchmark. See DESIGN.md
// for the substitution map and EXPERIMENTS.md for paper-versus-measured
// comparisons.
package amdgpubench
